"""Unit tests for the Module system, layers, initializers, optimizers, losses, STE."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    SGD,
    Adam,
    BatchNorm2d,
    Conv2d,
    CosineAnnealingLR,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    MultiStepLR,
    Parameter,
    ReLU,
    Sequential,
    StepLR,
    Tensor,
    activation_module,
)
from repro.nn import init as init_mod
from repro.nn import loss as loss_mod
from repro.nn import ste
from repro.nn.utils import check_gradient, clip_grad_norm, count_parameters, one_hot, seed_everything


class TestModuleSystem:
    def test_parameters_discovered_recursively(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert any("layer0.weight" in n for n in names)
        assert any("layer2.weight" in n for n in names)
        assert len(model.parameters()) == 4  # conv w/b + linear w/b

    def test_train_eval_propagates(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_round_trip(self, rng):
        a = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2), Linear(8, 3, rng=rng))
        b = Sequential(Conv2d(1, 2, 3, rng=np.random.default_rng(9)), BatchNorm2d(2),
                       Linear(8, 3, rng=np.random.default_rng(9)))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_load_state_dict_shape_mismatch(self, rng):
        a = Linear(3, 2, rng=rng)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_num_parameters(self, rng):
        layer = Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_sequential_iteration_and_indexing(self, rng):
        relu = ReLU()
        model = Sequential(Linear(2, 2, rng=rng), relu)
        assert len(model) == 2
        assert model[1] is relu
        assert list(iter(model))[1] is relu

    def test_module_list_is_not_callable(self):
        container = ModuleList([ReLU()])
        with pytest.raises(RuntimeError):
            container(Tensor([1.0]))

    def test_module_list_registers_children(self, rng):
        container = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(container.parameters()) == 4


class TestLayers:
    def test_conv_output_shape_helper(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert conv.output_shape((32, 32)) == (16, 16)

    def test_conv_forward_shape(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        out = conv(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_conv_no_bias(self, rng):
        conv = Conv2d(3, 8, 3, bias=False, rng=rng)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_linear_forward(self, rng):
        layer = Linear(6, 4, rng=rng)
        assert layer(Tensor(rng.standard_normal((3, 6)))).shape == (3, 4)

    def test_batchnorm_buffers_registered(self):
        bn = BatchNorm2d(4)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert "running_mean" in buffer_names and "running_var" in buffer_names

    def test_batchnorm_eval_deterministic(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        bn(x)  # one training pass updates the stats
        bn.eval()
        a = bn(x).data
        b = bn(x).data
        assert np.array_equal(a, b)

    def test_flatten_and_global_pool(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))
        assert Flatten()(x).shape == (2, 48)
        assert GlobalAvgPool2d()(x).shape == (2, 3)

    def test_activation_module_lookup(self):
        assert isinstance(activation_module("relu"), ReLU)
        assert activation_module(None)(Tensor([1.0])).data[0] == 1.0
        with pytest.raises(KeyError):
            activation_module("mish")


class TestInitializers:
    @pytest.mark.parametrize("name", ["he", "he_uniform", "xavier", "xavier_uniform", "rand"])
    def test_shapes_and_determinism(self, name):
        init = init_mod.get_initializer(name)
        a = init((64, 32, 3, 3), rng=np.random.default_rng(0))
        b = init((64, 32, 3, 3), rng=np.random.default_rng(0))
        assert a.shape == (64, 32, 3, 3)
        assert np.array_equal(a, b)

    def test_he_variance_scales_with_fan_in(self):
        rng = np.random.default_rng(0)
        w = init_mod.he_normal((256, 128, 3, 3), rng=rng)
        expected_std = np.sqrt(2.0 / (128 * 9))
        assert np.std(w) == pytest.approx(expected_std, rel=0.05)

    def test_xavier_variance(self):
        rng = np.random.default_rng(0)
        w = init_mod.xavier_normal((400, 300), rng=rng)
        expected_std = np.sqrt(2.0 / (400 + 300))
        assert np.std(w) == pytest.approx(expected_std, rel=0.05)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            init_mod.get_initializer("glorot-ish")

    def test_zeros_ones(self):
        assert np.all(init_mod.zeros((3, 3)) == 0)
        assert np.all(init_mod.ones((3, 3)) == 1)


class TestOptimizers:
    def _quadratic_step(self, optimizer_factory, steps=60):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            loss = (param * param).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return param.data

    def test_sgd_converges_on_quadratic(self):
        final = self._quadratic_step(lambda p: SGD(p, lr=0.1))
        assert np.all(np.abs(final) < 1e-3)

    def test_sgd_momentum_converges(self):
        final = self._quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=200)
        assert np.all(np.abs(final) < 1e-2)

    def test_adam_converges(self):
        final = self._quadratic_step(lambda p: Adam(p, lr=0.2), steps=200)
        assert np.all(np.abs(final) < 1e-2)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_step_skips_parameters_without_grad(self):
        param = Parameter(np.array([2.0]))
        SGD([param], lr=0.1).step()
        assert param.data[0] == 2.0

    def test_step_lr_schedule(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_multistep_lr(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_lr_endpoints(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10)
        assert scheduler.get_lr(0) == pytest.approx(1.0)
        assert scheduler.get_lr(10) == pytest.approx(0.0, abs=1e-12)


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = loss_mod.cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[np.arange(2), [0, 2]] = 100.0
        loss = loss_mod.cross_entropy(Tensor(logits), np.array([0, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient(self, rng):
        labels = np.array([0, 1, 2])
        check_gradient(lambda t: loss_mod.cross_entropy(t, labels), rng.standard_normal((3, 4)))

    def test_cross_entropy_rejects_2d_labels(self, rng):
        with pytest.raises(ValueError):
            loss_mod.cross_entropy(Tensor(rng.standard_normal((2, 3))), np.zeros((2, 3)))

    def test_mse_loss(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        loss = loss_mod.mse_loss(Tensor(a), Tensor(b))
        assert loss.item() == pytest.approx(np.mean((a - b) ** 2))

    def test_l2_regularization(self, rng):
        params = [Parameter(rng.standard_normal(4)), Parameter(rng.standard_normal((2, 2)))]
        expected = sum(float(np.sum(p.data ** 2)) for p in params)
        assert loss_mod.l2_regularization(params).item() == pytest.approx(expected)

    def test_l1_regularization(self, rng):
        params = [Parameter(rng.standard_normal(4))]
        assert loss_mod.l1_regularization(params).item() == pytest.approx(
            float(np.sum(np.abs(params[0].data))))

    def test_empty_regularization_is_zero(self):
        assert loss_mod.l2_regularization([]).item() == 0.0

    def test_accuracy(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]]))
        assert loss_mod.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_top_k_accuracy(self):
        logits = Tensor(np.array([[5.0, 4.0, 0.0], [0.0, 1.0, 5.0]]))
        assert loss_mod.top_k_accuracy(logits, np.array([1, 0]), k=2) == pytest.approx(0.5)


class TestSTE:
    def test_ste_bridge_forwards_values_and_routes_grad(self, rng):
        source = Parameter(rng.standard_normal((2, 3)))
        values = rng.standard_normal((2, 3))
        bridged = ste.ste_bridge(values, source)
        assert np.allclose(bridged.data, values)
        (bridged * 2.0).sum().backward()
        assert np.allclose(source.grad, 2.0)

    def test_ste_bridge_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            ste.ste_bridge(rng.standard_normal((2, 2)), Parameter(rng.standard_normal((3, 3))))

    def test_clip_mask_zeroes_below_threshold(self):
        mask = Parameter(np.array([0.5, 1e-5, -1e-5, -0.5]))
        clipped = ste.clip_mask(mask, 1e-4)
        assert np.allclose(clipped.data, [0.5, 0.0, 0.0, -0.5])

    def test_clip_mask_straight_through_gradient(self):
        mask = Parameter(np.array([0.5, 1e-6]))
        ste.clip_mask(mask, 1e-4).sum().backward()
        assert np.allclose(mask.grad, [1.0, 1.0])

    def test_binary_indicator(self):
        mask = Parameter(np.array([0.2, 0.0, -0.3]))
        assert list(ste.binary_indicator(mask, 0.1)) == [True, False, True]

    def test_round_ste(self):
        x = Parameter(np.array([0.4, 1.6]))
        out = ste.round_ste(x)
        assert np.allclose(out.data, [0.0, 2.0])
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_sign_ste_gradient_clipped(self):
        x = Parameter(np.array([0.5, 2.0, -0.5]))
        ste.sign_ste(x).sum().backward()
        assert np.allclose(x.grad, [1.0, 0.0, 1.0])


class TestUtils:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_seed_everything_reproducible(self):
        a = seed_everything(3).standard_normal(5)
        b = seed_everything(3).standard_normal(5)
        assert np.array_equal(a, b)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([3.0, 4.0, 0.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_count_parameters(self, rng):
        assert count_parameters([Parameter(np.zeros((2, 3))), Parameter(np.zeros(4))]) == 10

    def test_check_gradient_detects_wrong_gradient(self):
        def bad_fn(t):
            # The value depends on t (numeric gradient is 1) but the graph only
            # sees the zero-weighted term (analytic gradient is 0).
            return t.detach().sum() + (t * 0.0).sum()

        with pytest.raises(AssertionError):
            check_gradient(bad_fn, np.array([[1.0, 2.0]]))


# --------------------------------------------------------------------------- #
# Property-based: optimizer and initializer invariants
# --------------------------------------------------------------------------- #
@given(st.floats(0.01, 0.5), st.integers(1, 30))
@settings(max_examples=20, deadline=None)
def test_sgd_descends_convex_loss(lr, steps):
    param = Parameter(np.array([2.0]))
    optimizer = SGD([param], lr=lr)
    previous = float(param.data[0] ** 2)
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert float(param.data[0] ** 2) <= previous + 1e-12


@given(st.sampled_from(["he", "xavier", "rand"]), st.integers(1, 64), st.integers(1, 64))
@settings(max_examples=25, deadline=None)
def test_initializers_zero_mean(name, fan_out, fan_in):
    w = init_mod.get_initializer(name)((fan_out, fan_in), rng=np.random.default_rng(0))
    assert abs(float(np.mean(w))) < 0.5
