"""Tests for baseline compression methods: magnitude, FPGM, AMC, LCNN, low-rank."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    AMCPruner,
    FPGMPruner,
    LCNNCompressor,
    LowRankDecomposer,
    MagnitudePruner,
    apply_filter_masks,
    effective_cost,
    geometric_median,
    keep_top_filters,
    prunable_convolutions,
)
from repro.metrics import profile_model
from repro.models import lenet, resnet8
from repro.nn import Conv2d, Sequential, Tensor


@pytest.fixture
def small_cnn(rng):
    return Sequential(
        Conv2d(3, 8, 3, padding=1, rng=rng),
        Conv2d(8, 16, 3, padding=1, rng=rng),
        Conv2d(16, 16, 1, rng=rng),       # 1x1: excluded from pruning by default
    )


class TestCommonInfrastructure:
    def test_prunable_convolutions_excludes_1x1(self, small_cnn):
        layers = prunable_convolutions(small_cnn)
        assert len(layers) == 2
        assert all(conv.kernel_size[0] >= 2 for _, conv in layers)

    def test_keep_top_filters_selects_highest(self):
        scores = np.array([0.1, 5.0, 0.2, 3.0])
        assert list(keep_top_filters(scores, 2)) == [1, 3]

    def test_keep_top_filters_clamps_count(self):
        scores = np.array([1.0, 2.0])
        assert len(keep_top_filters(scores, 10)) == 2
        assert len(keep_top_filters(scores, 0)) == 1

    def test_plan_respects_prune_ratio(self, small_cnn):
        plan = MagnitudePruner().plan(small_cnn, prune_ratio=0.5)
        for decision in plan.decisions:
            assert decision.num_kept == max(1, round(decision.total_filters * 0.5))
        assert plan.overall_filter_reduction == pytest.approx(0.5, abs=0.1)

    def test_plan_rejects_invalid_ratio(self, small_cnn):
        with pytest.raises(ValueError):
            MagnitudePruner().plan(small_cnn, prune_ratio=1.0)

    def test_apply_filter_masks_zeroes_pruned_filters(self, small_cnn):
        pruner = MagnitudePruner()
        plan = pruner.prune(small_cnn, prune_ratio=0.5)
        modules = dict(small_cnn.named_modules())
        for decision in plan.decisions:
            weights = modules[decision.name].weight.data
            pruned = np.setdiff1d(np.arange(decision.total_filters), decision.kept_filters)
            assert np.allclose(weights[pruned], 0.0)
            assert not np.allclose(weights[decision.kept_filters], 0.0)

    def test_effective_cost_decreases_with_pruning(self, small_cnn):
        base = profile_model(small_cnn, (3, 16, 16))
        plan = MagnitudePruner().plan(small_cnn, prune_ratio=0.5)
        cost = effective_cost(small_cnn, plan, (3, 16, 16))
        assert cost["params"] < base.total_params()
        assert cost["ops"] < base.total_ops()
        assert cost["ops"] == 2 * cost["macs"]

    def test_effective_cost_no_pruning_matches_profile(self, small_cnn):
        from repro.baselines.common import PruningPlan
        base = profile_model(small_cnn, (3, 16, 16))
        empty = PruningPlan(method="none")
        cost = effective_cost(small_cnn, empty, (3, 16, 16))
        assert cost["params"] == pytest.approx(base.total_params())
        assert cost["ops"] == pytest.approx(base.total_ops())


class TestMagnitudePruner:
    def test_scores_are_filter_norms(self, rng):
        conv = Conv2d(2, 3, 3, rng=rng)
        scores = MagnitudePruner(norm="l1").score_filters("c", conv)
        expected = np.abs(conv.weight.data.reshape(3, -1)).sum(axis=1)
        assert np.allclose(scores, expected)

    def test_l2_norm_option(self, rng):
        conv = Conv2d(2, 3, 3, rng=rng)
        scores = MagnitudePruner(norm="l2").score_filters("c", conv)
        expected = np.sqrt((conv.weight.data.reshape(3, -1) ** 2).sum(axis=1))
        assert np.allclose(scores, expected)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            MagnitudePruner(norm="linf")

    def test_keeps_large_filters(self, rng):
        conv = Conv2d(1, 4, 3, rng=rng)
        conv.weight.data[1] = 10.0   # clearly the most salient filter
        conv.weight.data[3] = 0.001  # clearly the least
        model = Sequential(conv)
        plan = MagnitudePruner().plan(model, prune_ratio=0.5)
        kept = set(plan.decisions[0].kept_filters)
        assert 1 in kept and 3 not in kept


class TestFPGMPruner:
    def test_geometric_median_of_symmetric_points(self):
        points = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        median = geometric_median(points)
        assert np.allclose(median, [0.0, 0.0], atol=1e-6)

    def test_prunes_filters_closest_to_median(self, rng):
        conv = Conv2d(1, 5, 3, rng=rng)
        # Make filter 2 exactly the mean of the others -> closest to the median.
        conv.weight.data[2] = conv.weight.data[[0, 1, 3, 4]].mean(axis=0)
        model = Sequential(conv)
        plan = FPGMPruner().plan(model, prune_ratio=0.2)
        assert 2 not in plan.decisions[0].kept_filters

    def test_scores_are_distances(self, rng):
        conv = Conv2d(2, 4, 3, rng=rng)
        scores = FPGMPruner().score_filters("c", conv)
        assert scores.shape == (4,)
        assert np.all(scores >= 0)


class TestAMCPruner:
    def test_search_returns_result_with_ratios(self, rng):
        model = resnet8(rng=rng)
        pruner = AMCPruner(iterations=2, population=4, seed=0)
        result = pruner.search(model, ops_budget=0.5)
        assert len(result.per_layer_ratios) == len(prunable_convolutions(model))
        assert all(0.0 <= r <= pruner.max_ratio for r in result.per_layer_ratios.values())
        assert len(result.reward_history) == 2

    def test_plan_meets_rough_ops_budget(self, rng):
        model = resnet8(rng=rng)
        pruner = AMCPruner(iterations=4, population=8, seed=0)
        plan = pruner.plan(model, prune_ratio=0.5)
        cost = effective_cost(model, plan, (3, 16, 16), conv_only=True)
        base = profile_model(model, (3, 16, 16)).total_ops(conv_only=True)
        assert cost["ops"] < base  # strictly compressed

    def test_reward_uses_accuracy_and_budget(self):
        from repro.baselines import default_reward
        assert default_reward(0.9, 0.4, 0.5) == pytest.approx(0.9)
        assert default_reward(0.9, 0.7, 0.5) < 0.9

    def test_custom_evaluate_callback_is_used(self, rng):
        model = resnet8(rng=rng)
        calls = []

        def evaluate(m, plan):
            calls.append(plan)
            return 0.5

        pruner = AMCPruner(evaluate=evaluate, iterations=1, population=2, seed=0)
        pruner.plan(model, prune_ratio=0.5)
        assert len(calls) == 2

    def test_layer_state_vector(self, rng):
        model = resnet8(rng=rng)
        pruner = AMCPruner(seed=0)
        states = pruner.layer_states(model)
        name, state = states[0]
        vector = state.as_vector()
        assert vector.shape == (6,)
        assert vector[2] == state.out_channels

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            AMCPruner(seed=0).search(Sequential(), ops_budget=0.5)


class TestLCNN:
    def test_dictionary_shapes(self, rng):
        conv = Conv2d(3, 8, 3, rng=rng)
        compressor = LCNNCompressor(dictionary_fraction=0.5, sparsity=2, seed=0)
        dictionary = compressor.compress_layer("c", conv)
        assert dictionary.atoms.shape == (4, 27)
        assert dictionary.assignments.shape == (8, 2)
        assert dictionary.reconstruct_filters().shape == (8, 3, 3, 3)

    def test_costs_smaller_than_dense(self, rng):
        model = Sequential(Conv2d(3, 16, 3, padding=1, rng=rng))
        compressor = LCNNCompressor(dictionary_fraction=0.25, sparsity=2, seed=0)
        result = compressor.compress(model)
        cost = compressor.effective_cost(model, result, (3, 8, 8))
        base = profile_model(model, (3, 8, 8))
        assert cost["params"] < base.total_params()
        assert cost["ops"] < base.total_ops()

    def test_apply_replaces_weights_with_reconstruction(self, rng):
        model = Sequential(Conv2d(2, 8, 3, rng=rng))
        original = model[0].weight.data.copy()
        LCNNCompressor(dictionary_fraction=0.5, seed=0).compress(model, apply=True)
        assert not np.array_equal(model[0].weight.data, original)

    def test_reconstruction_better_with_larger_dictionary(self, rng):
        conv = Conv2d(3, 16, 3, rng=rng)
        errors = []
        for fraction in (0.125, 1.0):
            dictionary = LCNNCompressor(dictionary_fraction=fraction, sparsity=3,
                                        seed=0).compress_layer("c", conv)
            reconstruction = dictionary.reconstruct_filters()
            errors.append(np.linalg.norm(reconstruction - conv.weight.data))
        assert errors[1] <= errors[0] + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LCNNCompressor(dictionary_fraction=0.0)
        with pytest.raises(ValueError):
            LCNNCompressor(sparsity=0)


class TestLowRank:
    def test_rank_selection_by_fraction(self, rng):
        conv = Conv2d(3, 8, 3, rng=rng)
        factorization = LowRankDecomposer(rank_fraction=0.5).decompose_layer("c", conv)
        assert factorization.rank == 4
        assert factorization.code_weight.shape == (4, 3, 3, 3)
        assert factorization.expansion_weight.shape == (8, 4, 1, 1)

    def test_full_rank_reconstruction_is_exact(self, rng):
        conv = Conv2d(2, 4, 3, rng=rng)
        factorization = LowRankDecomposer(rank_fraction=1.0).decompose_layer("c", conv)
        # "Exact" up to the working precision of the engine's default dtype
        # (the float32 fast path carries ~1e-7 relative SVD round-off).
        tol = 1e-8 if conv.weight.dtype == np.float64 else 1e-5
        assert np.allclose(factorization.reconstruct(), conv.weight.data, atol=tol)
        assert factorization.approximation_error == pytest.approx(0.0, abs=tol)

    def test_energy_threshold_selection(self, rng):
        conv = Conv2d(2, 8, 3, rng=rng)
        # Make the weight matrix effectively rank-2.
        base = rng.standard_normal((2, 18))
        conv.weight.data = (rng.standard_normal((8, 2)) @ base).reshape(8, 2, 3, 3)
        factorization = LowRankDecomposer(rank_fraction=None,
                                          energy_threshold=0.999).decompose_layer("c", conv)
        assert factorization.rank <= 3

    def test_mutually_exclusive_selection_modes(self):
        with pytest.raises(ValueError):
            LowRankDecomposer(rank_fraction=0.5, energy_threshold=0.9)
        with pytest.raises(ValueError):
            LowRankDecomposer(rank_fraction=None, energy_threshold=None)

    def test_costs_reduced(self, rng):
        model = Sequential(Conv2d(3, 16, 3, padding=1, rng=rng))
        decomposer = LowRankDecomposer(rank_fraction=0.25)
        result = decomposer.decompose(model)
        cost = decomposer.effective_cost(model, result, (3, 8, 8))
        base = profile_model(model, (3, 8, 8))
        assert cost["params"] < base.total_params()
        assert cost["ops"] < base.total_ops()

    def test_error_decreases_with_rank(self, rng):
        conv = Conv2d(3, 16, 3, rng=rng)
        low = LowRankDecomposer(rank_fraction=0.25).decompose_layer("c", conv)
        high = LowRankDecomposer(rank_fraction=0.75).decompose_layer("c", conv)
        assert high.approximation_error <= low.approximation_error + 1e-12


@given(st.integers(2, 16), st.integers(1, 9))
@settings(max_examples=20, deadline=None)
def test_keep_top_filters_count_property(total, keep):
    scores = np.arange(total, dtype=float)
    kept = keep_top_filters(scores, keep)
    assert len(kept) == min(max(keep, 1), total)
    # Highest scores are always retained.
    assert total - 1 in kept
