"""Wire-format round trips over the *entire* method registry.

Every registered method must satisfy, for its spec, its config and a full
report: serialize → deserialize → re-serialize produces the identical
payload (and therefore the identical content digest).  This is the
foundation the result cache stands on — a method whose payload drifts
through one JSON round trip would replay a different report than it
stored — so the suite is parameterized over ``api.available_methods()``
and picks up new registrations automatically.

The same fixed-point discipline applies to the ``repro-plan/1`` wire
form: serialize → load → serialize is byte-equal, and the loaded plan's
forwards are bit-identical in both working precisions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.api as api
from repro.api.spec import config_from_dict, config_to_dict
from repro.deploy import InferencePlan, compile as compile_plan
from repro.models import build_model
from repro.nn.backend import use_backend

INPUT_SHAPE = (1, 16, 16)  # lenet's native geometry

METHODS = api.available_methods()


def non_default_config(method: str):
    """A config with non-default knobs, so defaults can't mask drift."""
    return {
        "alf": api.ALFSpec(remaining_fraction=0.4, deploy=False,
                           stage_remaining={8: 0.5, 16: 0.3}),
        "magnitude": api.MagnitudeSpec(prune_ratio=0.35, norm="l2"),
        "fpgm": api.FPGMSpec(prune_ratio=0.25, iterations=17),
        "amc": api.AMCSpec(target_ops_fraction=0.6, iterations=2,
                           population=4),
        "lcnn": api.LCNNSpec(dictionary_fraction=0.3, sparsity=2),
        "lowrank": api.LowRankSpec(rank_fraction=0.45),
    }[method]


def spec_for(method: str) -> api.CompressionSpec:
    return api.CompressionSpec(
        method=method, config=non_default_config(method),
        input_shape=INPUT_SHAPE, epochs=0, lr=0.01, hardware_batch=8,
        layer_names=("L1", "L2"), seed=3, label=f"{method}-rt")


def json_round_trip(payload):
    """Force the payload through real JSON text (tuples → lists, etc.)."""
    return json.loads(json.dumps(payload))


@pytest.mark.parametrize("method", METHODS)
class TestSpecRoundTrip:
    def test_spec_payload_is_a_fixed_point(self, method):
        spec = spec_for(method)
        payload = spec.to_dict()
        rebuilt = api.CompressionSpec.from_dict(json_round_trip(payload))
        assert rebuilt.to_dict() == payload
        # One more cycle: the payload must already be the fixed point.
        assert api.CompressionSpec.from_dict(
            rebuilt.to_dict()).to_dict() == payload

    def test_spec_digest_survives_the_round_trip(self, method):
        spec = spec_for(method)
        rebuilt = api.CompressionSpec.from_dict(
            json_round_trip(spec.to_dict()))
        assert rebuilt.digest() == spec.digest()

    def test_config_payload_is_a_fixed_point(self, method):
        config = non_default_config(method)
        payload = config_to_dict(config)
        rebuilt = config_from_dict(json_round_trip(payload))
        assert type(rebuilt) is type(config)
        assert config_to_dict(rebuilt) == payload

    def test_default_config_round_trips_too(self, method):
        entry = api.get_method(method)
        payload = config_to_dict(entry.config_type())
        rebuilt = config_from_dict(json_round_trip(payload))
        assert config_to_dict(rebuilt) == payload


@pytest.mark.parametrize("method", METHODS)
class TestReportRoundTrip:
    @pytest.fixture(scope="class")
    def reports(self):
        cache = {}

        def build(method: str) -> api.CompressionReport:
            if method not in cache:
                cache[method] = api.compress(
                    "lenet", method=method, config=non_default_config(method),
                    input_shape=INPUT_SHAPE, hardware=api.EYERISS_PAPER,
                    hardware_batch=8, seed=3, label=f"{method}-rt")
            return cache[method]

        return build

    def test_report_payload_is_a_fixed_point(self, method, reports):
        payload = reports(method).to_dict()
        rebuilt = api.CompressionReport.from_dict(json_round_trip(payload))
        assert rebuilt.to_dict() == payload

    def test_report_digest_survives_the_round_trip(self, method, reports):
        payload = reports(method).to_dict()
        rebuilt = api.CompressionReport.from_dict(json_round_trip(payload))
        assert api.payload_digest(rebuilt.to_dict()) == \
            api.payload_digest(payload)

    def test_hardware_breakdown_survives_the_round_trip(self, method, reports):
        """Per-layer energy / latency views work on a rebuilt report."""
        report = reports(method)
        rebuilt = api.CompressionReport.from_dict(
            json_round_trip(report.to_dict()))
        for original, back in (
                (report.dense_hardware, rebuilt.dense_hardware),
                (report.compressed_hardware, rebuilt.compressed_hardware)):
            assert back.layer_names() == original.layer_names()
            assert back.energy_by_level() == original.energy_by_level()
            assert back.grouped_latency() == original.grouped_latency()

    def test_legacy_totals_only_hardware_payloads_still_load(self, method,
                                                             reports):
        report = reports(method)
        payload = json_round_trip(report.to_dict())
        for key in ("dense_hardware", "compressed_hardware"):
            payload[key] = {"total_energy": payload[key]["total_energy"],
                            "total_latency": payload[key]["total_latency"]}
        rebuilt = api.CompressionReport.from_dict(payload)
        assert rebuilt.energy_reduction == pytest.approx(
            report.energy_reduction)
        assert rebuilt.latency_reduction == pytest.approx(
            report.latency_reduction)

    def test_cached_replay_equals_the_original(self, method, reports):
        """The cache stores and replays through exactly this round trip."""
        report = reports(method)
        store = api.MemoryReportCache()
        key = api.CacheKey(method=method, spec=report.spec.digest(),
                           model="0" * 64, data="0" * 64)
        store.put(key, report)
        replay = store.get(key)
        assert replay.to_dict() == report.to_dict()


@pytest.mark.parametrize("backend", ["numpy32", "numpy64"])
class TestPlanRoundTrip:
    def _plan(self, backend):
        model = build_model("lenet", rng=np.random.default_rng(5))
        with use_backend(backend):
            return model, compile_plan(model, INPUT_SHAPE, batch=2)

    def test_plan_payload_is_a_fixed_point(self, backend):
        _, plan = self._plan(backend)
        payload = plan.to_dict()
        loaded = InferencePlan.from_dict(json_round_trip(payload))
        assert api.canonical_json(loaded.to_dict()) == \
            api.canonical_json(payload)
        # One more cycle: the reloaded payload is already the fixed point.
        again = InferencePlan.from_dict(loaded.to_dict())
        assert api.canonical_json(again.to_dict()) == \
            api.canonical_json(payload)

    def test_save_load_save_is_byte_equal(self, backend, tmp_path):
        _, plan = self._plan(backend)
        first, second = tmp_path / "first.json", tmp_path / "second.json"
        plan.save(first)
        InferencePlan.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_loaded_plan_forward_is_bit_identical(self, backend):
        _, plan = self._plan(backend)
        loaded = InferencePlan.from_dict(json_round_trip(plan.to_dict()))
        x = np.random.default_rng(11).standard_normal(
            (2,) + INPUT_SHAPE).astype(plan.input_dtype)
        assert loaded(x).data.tobytes() == plan(x).data.tobytes()
