"""Tests for the content-addressed result cache + checkpoint store.

Five guarantees are pinned down:

* **Addressing** — cache keys are canonical: invariant to dict key order,
  stable across processes, distinct for distinct (spec, model, data), and
  absent (``None``) when a submission has no sound content address.
* **Stores** — the memory and file stores honour the same contract:
  put/get round trips, checkpoint persistence, stats, gc, and the
  ``REPRO_CACHE_DIR`` override.
* **Robustness** — a corrupt entry (bad digest, truncated JSON, unknown
  schema version) is a :class:`CacheIntegrityWarning` and a *miss*, never
  a crash.
* **Replay** — a session hit resolves its future instantly with a
  ``"cached"`` event and a report bit-identical to recomputation, on every
  executor; the ``cache=`` policy knob gates reads and writes separately.
* **Warm starts** — a near-miss spec seeds fine-tuning from the nearest
  same-(method, model, data) checkpoint, records the provenance, and
  falls back to the cold path when nothing matches.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

import repro.api as api
from repro.api.cache import CacheEntryError
from repro.api.jobs import LoaderPlan
from repro.data import DataLoader, make_synthetic_dataset
from repro.models import build_model

INPUT_SHAPE = (1, 16, 16)  # lenet's native geometry
EXECUTORS = ["serial", "thread", "process", "remote"]


def cost_spec(**overrides):
    defaults = dict(method="magnitude", input_shape=INPUT_SHAPE)
    defaults.update(overrides)
    return api.CompressionSpec(**defaults)


def run_cached_sweep(cache, specs=None, **overrides):
    kwargs = dict(model="lenet", data=None, hardware=api.EYERISS_PAPER,
                  input_shape=INPUT_SHAPE, cache=cache)
    kwargs.update(overrides)
    return api.run_sweep(specs or [cost_spec()], **kwargs)


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(64, num_classes=4,
                                  image_shape=INPUT_SHAPE, seed=0)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return api.MemoryReportCache()
    return api.FileReportCache(tmp_path / "cache")


@pytest.fixture
def report_and_key():
    spec = cost_spec()
    model = build_model("lenet", rng=np.random.default_rng(0))
    report = api.compress(model="lenet", method="magnitude",
                          input_shape=INPUT_SHAPE,
                          hardware=api.EYERISS_PAPER)
    key = api.cache_key(spec, model, LoaderPlan(kind="none"))
    return report, key


# --------------------------------------------------------------------------- #
# Digests + keys
# --------------------------------------------------------------------------- #
class TestDigests:
    def test_canonical_json_is_key_order_invariant(self):
        a = {"b": 1, "a": {"y": 2, "x": 3}}
        b = {"a": {"x": 3, "y": 2}, "b": 1}
        assert api.canonical_json(a) == api.canonical_json(b)
        assert api.payload_digest(a) == api.payload_digest(b)

    def test_integer_mapping_keys_digest_like_their_wire_form(self):
        # ALFSpec.stage_remaining keys filter counts by int; JSON
        # stringifies them in transit.  Both representations must share
        # one digest or a cached spec would never hit after a round trip.
        assert api.payload_digest({8: 0.5, 16: 0.3}) == \
            api.payload_digest({"16": 0.3, "8": 0.5})

    def test_spec_digest_stable_and_distinct(self):
        assert cost_spec().digest() == cost_spec().digest()
        other = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.3))
        assert cost_spec().digest() != other.digest()

    def test_spec_digest_invariant_to_payload_key_order(self):
        # A digest computed from a round-tripped payload (different dict
        # insertion order after JSON churn) must equal the original's.
        spec = cost_spec(config=api.MagnitudeSpec(norm="l2"))
        payload = json.loads(json.dumps(spec.to_dict()))
        shuffled = dict(reversed(list(payload.items())))
        rebuilt = api.CompressionSpec.from_dict(shuffled)
        assert rebuilt.digest() == spec.digest()

    def test_spec_with_built_module_has_no_digest(self):
        model = build_model("lenet", rng=np.random.default_rng(0))
        with pytest.raises(TypeError):
            cost_spec(model=model).digest()

    def test_model_digest_tracks_parameter_bytes(self):
        a = build_model("lenet", rng=np.random.default_rng(0))
        b = build_model("lenet", rng=np.random.default_rng(0))
        assert api.model_digest(a) == api.model_digest(b)
        name, param = next(iter(b.named_parameters()))
        param.data = param.data + 1e-3
        assert api.model_digest(a) != api.model_digest(b)

    def test_data_digest_none_for_template_plans(self, dataset):
        loaders = (DataLoader(dataset, batch_size=16),
                   DataLoader(dataset, batch_size=16))
        template = LoaderPlan(kind="template", template=loaders)
        assert api.data_digest(template) is None
        assert api.data_digest(LoaderPlan(kind="none")) is not None

    def test_cache_key_combined_and_uncacheable_forms(self, dataset):
        model = build_model("lenet", rng=np.random.default_rng(0))
        key = api.cache_key(cost_spec(), model, LoaderPlan(kind="none"))
        assert key is not None
        assert key.combined == key.combined  # stable property
        assert key.method == "magnitude"
        assert key.to_dict()["combined"] == key.combined
        # Live loaders → no canonical data recipe → no key.
        loaders = (DataLoader(dataset, batch_size=16), None)
        template = LoaderPlan(kind="template", template=loaders)
        assert api.cache_key(cost_spec(), model, template) is None
        # Built Module on the spec → no spec payload → no key.
        assert api.cache_key(cost_spec(model=model), model,
                             LoaderPlan(kind="none")) is None

    def test_spec_distance_prefers_nearest_numeric(self):
        base = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.5)).to_dict()
        near = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.45)).to_dict()
        far = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.1)).to_dict()
        assert api.spec_distance(base, base) == 0.0
        assert api.spec_distance(base, near) < api.spec_distance(base, far)


# --------------------------------------------------------------------------- #
# Store contract (memory + file)
# --------------------------------------------------------------------------- #
class TestReportCacheStores:
    def test_put_get_round_trip_is_exact(self, store, report_and_key):
        report, key = report_and_key
        assert store.get(key) is None  # miss first
        store.put(key, report)
        replay = store.get(key)
        assert replay is not None
        assert replay.to_dict() == report.to_dict()

    def test_checkpoint_round_trip(self, store, report_and_key):
        report, key = report_and_key
        state = report.compressed.model.state_dict()
        store.put(key, report, checkpoint=state)
        loaded = store.checkpoint(key)
        assert set(loaded) == set(state)
        for name in state:
            np.testing.assert_array_equal(loaded[name], state[name])
        assert store.entry(key)["checkpoint"] is True

    def test_stats_and_len(self, store, report_and_key):
        report, key = report_and_key
        store.get(key)
        store.put(key, report,
                  checkpoint=report.compressed.model.state_dict())
        store.get(key)
        stats = store.stats()
        assert (stats.entries, stats.checkpoints) == (1, 1)
        assert stats.total_bytes > 0
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert len(store) == 1

    def test_gc_evicts_oldest_first_and_clear(self, store, report_and_key):
        report, key = report_and_key
        store.put(key, report)
        other = api.CacheKey(method=key.method, spec="0" * 64,
                             model=key.model, data=key.data)
        store.put(other, report,
                  checkpoint=report.compressed.model.state_dict())
        assert store.gc(max_entries=2) == 0
        assert store.gc(max_entries=1) == 1
        assert store.get(key) is None       # the older entry was evicted
        assert store.get(other) is not None
        assert store.gc(clear=True) == 1
        assert len(store) == 0
        assert store.checkpoint(other) is None

    def test_warm_source_recorded_on_entry(self, store, report_and_key):
        report, key = report_and_key
        store.put(key, report, warm_source="f" * 64)
        assert store.entry(key)["warm_source"] == "f" * 64

    def test_gc_is_lru_not_write_order(self, store, report_and_key):
        """A get() hit must protect an entry from eviction: recency is the
        persisted seq, not write order (and not filesystem mtime)."""
        report, key = report_and_key
        store.put(key, report)
        other = api.CacheKey(method=key.method, spec="0" * 64,
                             model=key.model, data=key.data)
        store.put(other, report)
        assert store.get(key) is not None   # touch the older entry
        assert store.gc(max_entries=1) == 1
        assert store.get(other) is None     # untouched entry was evicted
        assert store.get(key) is not None   # touched entry survived

    def test_seq_persists_and_grows(self, store, report_and_key):
        report, key = report_and_key
        store.put(key, report)
        assert store.entry(key)["seq"] == 0
        other = api.CacheKey(method=key.method, spec="0" * 64,
                             model=key.model, data=key.data)
        store.put(other, report)
        assert store.entry(other)["seq"] == 1
        store.get(key)                      # hit refreshes the seq
        assert store.entry(key)["seq"] == 2

    def test_gc_same_mtime_writes_evict_in_write_order(self, tmp_path,
                                                       report_and_key):
        """Coarse (1 s) mtimes must not decide eviction: two entries
        written within the same second still evict oldest-write first,
        whatever their digest order."""
        store = api.FileReportCache(tmp_path / "cache")
        report, key = report_and_key
        other = api.CacheKey(method=key.method, spec="0" * 64,
                             model=key.model, data=key.data)
        # Write the alphabetically-larger combined digest FIRST, so a
        # same-mtime digest-alphabetical order would evict the wrong one.
        first, second = sorted((key, other),
                               key=lambda k: k.combined, reverse=True)
        store.put(first, report)
        store.put(second, report)
        stamp = os.path.getmtime(store._entry_path(first.combined))
        for entry_key in (first, second):
            os.utime(store._entry_path(entry_key.combined), (stamp, stamp))
        assert store.gc(max_entries=1) == 1
        assert store.entry(first) is None    # oldest write evicted
        assert store.entry(second) is not None


class TestNearestCheckpoint:
    def _put(self, store, key, report, ratio):
        spec = cost_spec(config=api.MagnitudeSpec(prune_ratio=ratio),
                         epochs=1)
        entry_key = api.CacheKey(method=key.method, spec=spec.digest(),
                                 model=key.model, data=key.data)
        report.spec = spec
        store.put(entry_key, report,
                  checkpoint=report.compressed.model.state_dict())
        return entry_key

    def test_nearest_same_family_checkpoint_wins(self, report_and_key):
        store = api.MemoryReportCache()
        report, key = report_and_key
        self._put(store, key, report, 0.1)
        near = self._put(store, key, report, 0.45)
        query = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.5), epochs=1)
        query_key = api.CacheKey(method=key.method, spec=query.digest(),
                                 model=key.model, data=key.data)
        warm = store.nearest_checkpoint(query_key, query.to_dict())
        assert warm is not None
        assert warm.source == near.combined
        assert warm.spec.config.prune_ratio == 0.45
        assert all(isinstance(v, np.ndarray) for v in warm.state.values())

    def test_other_model_or_method_never_seeds(self, report_and_key):
        store = api.MemoryReportCache()
        report, key = report_and_key
        self._put(store, key, report, 0.45)
        query = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.5), epochs=1)
        other_model = api.CacheKey(method=key.method, spec=query.digest(),
                                   model="0" * 64, data=key.data)
        assert store.nearest_checkpoint(other_model, query.to_dict()) is None
        other_method = api.CacheKey(method="fpgm", spec=query.digest(),
                                    model=key.model, data=key.data)
        assert store.nearest_checkpoint(other_method, query.to_dict()) is None

    def test_distance_ties_break_on_combined_digest(self, report_and_key):
        """Equidistant candidates must resolve deterministically — by the
        combined digest, not by store iteration (write) order."""
        report, key = report_and_key

        def put_labelled(store, label):
            spec = cost_spec(label=label)
            entry_key = api.CacheKey(method=key.method, spec=spec.digest(),
                                     model=key.model, data=key.data)
            report.spec = spec
            store.put(entry_key, report,
                      checkpoint=report.compressed.model.state_dict())
            return entry_key

        probe = api.MemoryReportCache()
        a = put_labelled(probe, "tie-a")
        b = put_labelled(probe, "tie-b")
        query = cost_spec(label="tie-query")
        query_key = api.CacheKey(method=key.method, spec=query.digest(),
                                 model=key.model, data=key.data)
        winner = min(a.combined, b.combined)
        loser_first = max((a, b), key=lambda k: k.combined)
        # Write the larger digest first: iteration-order tie-breaking
        # would pick it; the digest order must pick the smaller one.
        for store in (api.MemoryReportCache(),):
            put_labelled(store, "tie-a" if loser_first is a else "tie-b")
            put_labelled(store, "tie-b" if loser_first is a else "tie-a")
            warm = store.nearest_checkpoint(query_key, query.to_dict())
            assert warm is not None
            assert warm.source == winner

    def test_entry_without_checkpoint_never_seeds(self, report_and_key):
        store = api.MemoryReportCache()
        report, key = report_and_key
        store.put(key, report)  # no checkpoint
        query = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.5), epochs=1)
        query_key = api.CacheKey(method=key.method, spec=query.digest(),
                                 model=key.model, data=key.data)
        assert store.nearest_checkpoint(query_key, query.to_dict()) is None


# --------------------------------------------------------------------------- #
# Plan artifacts: store / serve serialized repro-plan/1 payloads
# --------------------------------------------------------------------------- #
def _plan_artifact():
    body = {"schema": "repro-plan/1", "values": [], "nodes": [],
            "batch": 2}
    body["digest"] = api.payload_digest(body)
    return body


class TestPlanArtifacts:
    def test_put_get_round_trip(self, store):
        payload = _plan_artifact()
        assert store.get_plan("a" * 64) is None        # miss first
        store.put_plan("a" * 64, payload)
        assert store.get_plan("a" * 64) == payload
        stats = store.stats()
        assert stats.plans == 1
        assert stats.hits >= 1 and stats.writes >= 1

    def test_damaged_artifact_is_a_warned_miss(self, store):
        payload = _plan_artifact()
        payload["digest"] = "0" * 64
        store.put_plan("a" * 64, payload)
        with pytest.warns(api.CacheIntegrityWarning, match="digest"):
            assert store.get_plan("a" * 64) is None

    def test_non_plan_schema_is_a_warned_miss(self, store):
        store.put_plan("a" * 64, {"schema": "repro-job/1"})
        with pytest.warns(api.CacheIntegrityWarning, match="schema"):
            assert store.get_plan("a" * 64) is None

    def test_gc_clear_removes_plans(self, store):
        store.put_plan("a" * 64, _plan_artifact())
        store.gc(clear=True)
        assert store.stats().plans == 0
        assert store.get_plan("a" * 64) is None

    def test_gc_max_entries_leaves_plans_alone(self, store, report_and_key):
        report, key = report_and_key
        store.put(key, report)
        store.put_plan("a" * 64, _plan_artifact())
        assert store.gc(max_entries=0) == 1
        assert store.get_plan("a" * 64) is not None

    def test_put_plan_rejects_non_mappings(self, store):
        with pytest.raises(TypeError, match="mapping"):
            store.put_plan("a" * 64, "not a mapping")


# --------------------------------------------------------------------------- #
# Corrupt entries: warning + miss, never a crash
# --------------------------------------------------------------------------- #
class TestCorruptEntries:
    @pytest.fixture
    def populated(self, tmp_path, report_and_key):
        store = api.FileReportCache(tmp_path / "cache")
        report, key = report_and_key
        store.put(key, report)
        path = store._entry_path(key.combined)
        assert os.path.exists(path)
        return store, key, path

    def _assert_warned_miss(self, store, key):
        with pytest.warns(api.CacheIntegrityWarning):
            assert store.get(key) is None
        assert store.stats().misses >= 1

    def test_truncated_json_is_a_warned_miss(self, populated):
        store, key, path = populated
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        with open(path, "w", encoding="utf-8") as f:
            f.write(text[:len(text) // 2])
        self._assert_warned_miss(store, key)

    def test_bad_digest_is_a_warned_miss(self, populated):
        store, key, path = populated
        with open(path, "r", encoding="utf-8") as f:
            entry = json.load(f)
        entry["report"]["cost"]["params"] = -1.0  # tamper past the digest
        with open(path, "w", encoding="utf-8") as f:
            json.dump(entry, f)
        self._assert_warned_miss(store, key)

    def test_unknown_schema_version_is_a_warned_miss(self, populated):
        store, key, path = populated
        with open(path, "r", encoding="utf-8") as f:
            entry = json.load(f)
        entry["schema"] = "repro-cache-entry/99"
        with open(path, "w", encoding="utf-8") as f:
            json.dump(entry, f)
        self._assert_warned_miss(store, key)

    def test_corrupt_entries_never_seed_warm_starts(self, populated):
        store, key, path = populated
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        query = cost_spec(config=api.MagnitudeSpec(prune_ratio=0.4))
        query_key = api.CacheKey(method=key.method, spec=query.digest(),
                                 model=key.model, data=key.data)
        assert store.nearest_checkpoint(query_key, query.to_dict()) is None

    def test_decode_error_reasons_are_specific(self):
        with pytest.raises(CacheEntryError, match="unreadable"):
            api.ReportCache._decode("{truncated")
        with pytest.raises(CacheEntryError, match="schema"):
            api.ReportCache._decode(json.dumps({"schema": "bogus/1"}))
        with pytest.raises(CacheEntryError, match="digest"):
            api.ReportCache._decode(json.dumps(
                {"schema": api.CACHE_ENTRY_SCHEMA, "report": {"a": 1},
                 "report_digest": "0" * 64}))


# --------------------------------------------------------------------------- #
# Session integration: replay, policy knob, write-back
# --------------------------------------------------------------------------- #
class TestSessionCacheReplay:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_hit_is_bit_identical_on_every_executor(self, executor):
        # Profile seconds are wall-clock and non-deterministic, so the
        # bit-identity contract is pinned on profile=False specs.
        specs = [cost_spec(),
                 cost_spec(method="lowrank", config=api.LowRankSpec(
                     rank_fraction=0.4))]
        reference = run_cached_sweep(None, specs=specs)
        cache = api.MemoryReportCache()
        first = run_cached_sweep(cache, specs=specs, executor=executor,
                                 max_workers=2)
        replay = run_cached_sweep(cache, specs=specs)
        assert cache.stats().hits == len(specs)
        for fresh, ref, hit in zip(first.reports, reference.reports,
                                   replay.reports):
            assert fresh.to_dict() == ref.to_dict()
            assert hit.to_dict() == ref.to_dict()

    def test_cached_event_replaces_scheduled_and_completed(self):
        cache = api.MemoryReportCache()
        run_cached_sweep(cache)
        events = []
        with api.SweepSession(model="lenet", hardware=api.EYERISS_PAPER,
                              input_shape=INPUT_SHAPE, cache=cache) as s:
            s.add_progress_callback(lambda e: events.append(e.kind))
            future = s.submit(cost_spec())
            report = future.result()
        assert future.cached is True
        assert events == ["submitted", "cached"]
        assert report.dense is s.dense  # rebound onto the session baseline

    def test_policy_off_never_touches_the_store(self):
        cache = api.MemoryReportCache()
        run_cached_sweep((cache, "off"))
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.writes) == (0, 0, 0)

    def test_policy_read_never_writes(self):
        cache = api.MemoryReportCache()
        run_cached_sweep((cache, "read"))
        stats = cache.stats()
        assert stats.writes == 0
        assert stats.misses == 1

    def test_policy_write_never_reads(self):
        cache = api.MemoryReportCache()
        run_cached_sweep(cache)
        assert len(cache) == 1
        run_cached_sweep((cache, "write"))
        stats = cache.stats()
        assert stats.hits == 0      # the stored entry was not consulted
        assert stats.writes == 2    # ... but the fresh report was written

    def test_remote_results_are_written_back(self):
        cache = api.MemoryReportCache()
        run_cached_sweep(cache, executor="remote", max_workers=1)
        assert cache.stats().writes == 1
        replay = run_cached_sweep(cache)
        assert cache.stats().hits == 1
        assert replay.reports[0].method == "magnitude"

    def test_template_loaders_disable_caching_with_warning(self, dataset):
        cache = api.MemoryReportCache()
        train, val = dataset.split(0.8)
        loaders = (DataLoader(train, batch_size=16, shuffle=True, seed=0),
                   DataLoader(val, batch_size=32))
        with pytest.warns(api.CacheIntegrityWarning, match="canonical"):
            run_cached_sweep(cache, data=loaders)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.writes) == (0, 0, 0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="cache policy"):
            api.resolve_cache("sometimes")
        with pytest.raises(TypeError):
            api.resolve_cache(42)

    def test_env_var_selects_the_default_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(api.CACHE_ENV_VAR, str(tmp_path / "envcache"))
        run_cached_sweep("readwrite")
        store = api.default_cache()
        assert store.root == str(tmp_path / "envcache")
        assert len(store) == 1

    def test_populate_then_hit_across_processes(self, tmp_path):
        """The CI cache job's contract: second run over the same
        REPRO_CACHE_DIR takes the hit path.  Locally (no REPRO_CACHE_DIR)
        both phases run here against a temp dir."""
        expect_hit = os.environ.get("REPRO_CACHE_EXPECT_HIT") == "1"
        env_root = os.environ.get(api.CACHE_ENV_VAR)
        root = env_root if env_root else str(tmp_path / "cache")
        store = api.FileReportCache(root)
        if env_root is None:
            run_cached_sweep(store)  # local populate phase
        elif not expect_hit:
            run_cached_sweep(store)  # CI populate run
            return
        with api.SweepSession(model="lenet", hardware=api.EYERISS_PAPER,
                              input_shape=INPUT_SHAPE, cache=store) as s:
            future = s.submit(cost_spec())
            future.result()
        assert future.cached is True


class TestWarmStart:
    def _trained_spec(self, ratio):
        return api.CompressionSpec(
            method="magnitude", config=api.MagnitudeSpec(prune_ratio=ratio),
            epochs=1, input_shape=INPUT_SHAPE)

    def test_near_miss_seeds_and_records_provenance(self, dataset):
        cache = api.MemoryReportCache()
        with api.SweepSession(model="lenet", data=dataset, hardware=None,
                              input_shape=INPUT_SHAPE, cache=cache) as s:
            s.submit(self._trained_spec(0.3)).result()
        assert cache.stats().checkpoints == 1
        with api.SweepSession(model="lenet", data=dataset, hardware=None,
                              input_shape=INPUT_SHAPE, cache=cache) as s:
            future = s.submit(self._trained_spec(0.5))
            report = future.result()
        assert future.cached is False
        assert future.warm_source is not None
        assert report.accuracy is not None
        # The warm run's own entry records where its seed came from.
        entry = cache.entry(future._cache_key)
        assert entry["warm_source"] == future.warm_source

    def test_warm_accuracy_matches_from_dense_within_tolerance(self, dataset):
        """A warm-started near-miss lands where the cold run lands."""
        cache = api.MemoryReportCache()
        with api.SweepSession(model="lenet", data=dataset, hardware=None,
                              input_shape=INPUT_SHAPE, cache=cache) as s:
            s.submit(self._trained_spec(0.3)).result()
        cold = api.run_sweep([self._trained_spec(0.5)], model="lenet",
                             data=dataset, hardware=None,
                             input_shape=INPUT_SHAPE).reports[0]
        warm = api.run_sweep([self._trained_spec(0.5)], model="lenet",
                             data=dataset, hardware=None,
                             input_shape=INPUT_SHAPE,
                             cache=(cache, "read")).reports[0]
        assert abs(warm.accuracy - cold.accuracy) <= 0.25
        # Same compressed structure either way.
        assert warm.cost == cold.cost

    def test_warm_start_disabled_by_knob(self, dataset):
        cache = api.MemoryReportCache()
        with api.SweepSession(model="lenet", data=dataset, hardware=None,
                              input_shape=INPUT_SHAPE, cache=cache) as s:
            s.submit(self._trained_spec(0.3)).result()
        with api.SweepSession(model="lenet", data=dataset, hardware=None,
                              input_shape=INPUT_SHAPE, cache=cache,
                              warm_start=False) as s:
            future = s.submit(self._trained_spec(0.5))
            future.result()
        assert future.warm_source is None

    def test_untrained_specs_store_no_checkpoint(self):
        cache = api.MemoryReportCache()
        run_cached_sweep(cache)  # epochs=0
        assert cache.stats().checkpoints == 0
        assert len(cache) == 1

    def test_strict_state_matching_rejects_mismatches(self):
        from repro.api.adapters import _load_matching_state
        model = build_model("lenet", rng=np.random.default_rng(0))
        state = model.state_dict()
        twin = build_model("lenet", rng=np.random.default_rng(7))
        assert _load_matching_state(twin, state) is True
        assert api.model_digest(twin) == api.model_digest(model)
        # Missing parameter → rejected, nothing touched.
        partial = dict(state)
        partial.pop(next(iter(k for k in partial
                              if not k.startswith("buffer:"))))
        fresh = build_model("lenet", rng=np.random.default_rng(7))
        before = api.model_digest(fresh)
        assert _load_matching_state(fresh, partial) is False
        assert api.model_digest(fresh) == before
        # Shape mismatch → rejected.
        wrong = {k: (np.zeros((2, 2)) if i == 0 else v)
                 for i, (k, v) in enumerate(state.items())}
        assert _load_matching_state(fresh, wrong) is False


# --------------------------------------------------------------------------- #
# CLI maintenance surface
# --------------------------------------------------------------------------- #
class TestCacheCLI:
    def _run(self, *argv, check=True):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.api.cache", *argv],
            env=env, capture_output=True, text=True)
        if check:
            assert proc.returncode == 0, proc.stderr
        return proc

    @pytest.fixture
    def populated_root(self, tmp_path, report_and_key):
        store = api.FileReportCache(tmp_path / "cache")
        report, key = report_and_key
        store.put(key, report,
                  checkpoint=report.compressed.model.state_dict())
        other = api.CacheKey(method=key.method, spec="0" * 64,
                             model=key.model, data=key.data)
        store.put(other, report)
        return store.root

    def test_stats_prints_json(self, populated_root):
        proc = self._run("--dir", populated_root, "stats")
        payload = json.loads(proc.stdout)
        assert payload["root"] == populated_root
        assert payload["entries"] == 2
        assert payload["checkpoints"] == 1
        assert payload["plans"] == 0
        assert payload["total_bytes"] > 0

    def test_gc_max_entries_and_clear(self, populated_root):
        proc = self._run("--dir", populated_root, "gc", "--max-entries", "1")
        assert "removed 1 entry" in proc.stdout
        proc = self._run("--dir", populated_root, "gc", "--clear")
        assert "removed 1 entry" in proc.stdout
        stats = api.FileReportCache(populated_root).stats()
        assert (stats.entries, stats.checkpoints) == (0, 0)

    def test_gc_without_arguments_errors(self, tmp_path):
        proc = self._run("--dir", str(tmp_path), "gc", check=False)
        assert proc.returncode != 0
        assert "--max-entries or --clear" in proc.stderr
