"""Unit tests for the ALF core: config, schedule, mask, autoencoder, block, convert, deploy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ALFConfig,
    ALFConv2d,
    ALFTrainer,
    CompressedConv2d,
    PruningMask,
    WeightAutoencoder,
    alf_blocks,
    ccode_max,
    compress_block,
    compress_model,
    convert_to_alf,
    nu_prune,
)
from repro.core.schedule import PruningSchedule
from repro.models import lenet, plain8
from repro.nn import Conv2d, Sequential, Tensor
from repro.nn.loss import cross_entropy


class TestConfig:
    def test_defaults_match_paper(self):
        config = ALFConfig()
        assert config.threshold == pytest.approx(1e-4)
        assert config.lr_autoencoder == pytest.approx(1e-3)
        assert config.slope == 8.0
        assert config.pr_max == 0.85
        assert config.sigma_ae == "tanh"
        assert config.sigma_inter is None
        assert config.wexp_init == "xavier"

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ALFConfig(threshold=-1.0).validate()
        with pytest.raises(ValueError):
            ALFConfig(pr_max=1.5).validate()
        with pytest.raises(ValueError):
            ALFConfig(slope=0.0).validate()
        with pytest.raises(ValueError):
            ALFConfig(lr_task=-0.1).validate()

    def test_validate_rejects_bad_optimizer_and_mask_values(self):
        """Regression: momentum / weight_decay / mask_init were unchecked."""
        with pytest.raises(ValueError):
            ALFConfig(momentum=1.0).validate()
        with pytest.raises(ValueError):
            ALFConfig(momentum=-0.1).validate()
        with pytest.raises(ValueError):
            ALFConfig(weight_decay=-1e-4).validate()
        with pytest.raises(ValueError):
            ALFConfig(mask_init=-0.5).validate()
        # The boundary values remain valid.
        ALFConfig(momentum=0.0, weight_decay=0.0, mask_init=0.0).validate()

    def test_with_overrides_returns_new_instance(self):
        base = ALFConfig()
        other = base.with_overrides(threshold=5e-4)
        assert other.threshold == pytest.approx(5e-4)
        assert base.threshold == pytest.approx(1e-4)


class TestSchedule:
    def test_nu_prune_is_one_ish_at_zero(self):
        assert nu_prune(0.0, slope=8.0, pr_max=0.85) == pytest.approx(1.0, abs=1e-2)

    def test_nu_prune_zero_at_pr_max(self):
        assert nu_prune(0.85, slope=8.0, pr_max=0.85) == pytest.approx(0.0)

    def test_nu_prune_zero_beyond_pr_max(self):
        assert nu_prune(0.95, slope=8.0, pr_max=0.85) == 0.0

    def test_nu_prune_monotonically_decreasing(self):
        values = [nu_prune(theta) for theta in np.linspace(0, 1, 21)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_nu_prune_rejects_out_of_range_theta(self):
        with pytest.raises(ValueError):
            nu_prune(1.5)

    def test_schedule_records_history_and_saturation(self):
        schedule = PruningSchedule(slope=8.0, pr_max=0.5)
        schedule(0.1)
        schedule(0.4)
        assert len(schedule.history) == 2
        assert not schedule.saturated(0.4)
        assert schedule.saturated(0.5)


class TestPruningMask:
    def test_initial_mask_keeps_everything(self):
        mask = PruningMask(8, threshold=1e-4, init_value=1.0)
        assert mask.num_active() == 8
        assert mask.zero_fraction() == 0.0

    def test_clipping_below_threshold(self):
        mask = PruningMask(4, threshold=0.1)
        mask.mask.data = np.array([0.5, 0.05, -0.05, -0.5])
        assert mask.num_active() == 2
        assert np.allclose(mask().data, [0.5, 0.0, 0.0, -0.5])

    def test_disabled_mask_is_identity(self):
        mask = PruningMask(4, threshold=0.1, enabled=False)
        mask.mask.data = np.zeros(4)
        assert np.allclose(mask().data, 1.0)
        assert mask.num_active() == 4

    def test_sparsity_loss_is_mean_absolute_mask(self):
        mask = PruningMask(4)
        mask.mask.data = np.array([1.0, -2.0, 0.5, 0.0])
        assert mask.sparsity_loss().item() == pytest.approx(3.5 / 4)

    def test_reset(self):
        mask = PruningMask(3, init_value=0.7)
        mask.mask.data = np.zeros(3)
        mask.reset()
        assert np.allclose(mask.mask.data, 1.0)
        mask.reset(0.3)
        assert np.allclose(mask.mask.data, 0.3)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PruningMask(0)
        with pytest.raises(ValueError):
            PruningMask(4, threshold=-1.0)

    def test_recovery_possible_through_ste(self):
        """A clipped entry still receives gradients and can grow back."""
        mask = PruningMask(2, threshold=0.1)
        mask.mask.data = np.array([0.01, 1.0])
        out = mask()
        (out * Tensor(np.array([-1.0, 0.0]))).sum().backward()
        assert mask.mask.grad is not None
        assert mask.mask.grad[0] == pytest.approx(-1.0)


class TestWeightAutoencoder:
    def _autoencoder(self, filters=6, **kwargs):
        return WeightAutoencoder(filters, rng=np.random.default_rng(0), **kwargs)

    def test_forward_shapes(self, rng):
        ae = self._autoencoder()
        weight_matrix = Tensor(rng.standard_normal((18, 6)))
        out = ae(weight_matrix)
        assert out.code.shape == (18, 6)
        assert out.reconstruction.shape == (18, 6)

    def test_compute_code_matches_graph_encode(self, rng):
        ae = self._autoencoder()
        weight = rng.standard_normal((6, 2, 3, 3))
        code_np = ae.compute_code(weight)
        weight_matrix = Tensor(weight.reshape(6, -1).T)
        code_graph, _ = ae.encode(weight_matrix)
        assert np.allclose(code_np.reshape(6, -1).T, code_graph.data)

    def test_compute_code_wrong_filters(self, rng):
        ae = self._autoencoder(filters=4)
        with pytest.raises(ValueError):
            ae.compute_code(rng.standard_normal((6, 2, 3, 3)))

    def test_masked_filters_zero_in_code(self, rng):
        ae = self._autoencoder()
        ae.pruning_mask.mask.data = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 1.0])
        code = ae.compute_code(rng.standard_normal((6, 2, 3, 3)))
        assert np.allclose(code[1], 0.0)
        assert np.allclose(code[3], 0.0)
        assert not np.allclose(code[0], 0.0)

    def test_reconstruction_loss_decreases_with_training(self, rng):
        from repro.nn import SGD
        ae = self._autoencoder()
        weight = Tensor(rng.standard_normal((18, 6)) * 0.3)
        optimizer = SGD(ae.autoencoder_parameters(), lr=0.5)
        initial = ae.reconstruction_loss(weight).item()
        for _ in range(50):
            loss = ae.reconstruction_loss(weight)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert ae.reconstruction_loss(weight).item() < initial * 0.5

    def test_activation_options(self, rng):
        weight = rng.standard_normal((4, 1, 3, 3))
        for name in ("tanh", "sigmoid", "relu", "none"):
            ae = WeightAutoencoder(4, sigma_ae=name, rng=np.random.default_rng(0))
            code = ae.compute_code(weight)
            assert code.shape == weight.shape
        sigmoid_code = WeightAutoencoder(4, sigma_ae="sigmoid",
                                         rng=np.random.default_rng(0)).compute_code(weight)
        assert np.all(sigmoid_code >= 0.0) and np.all(sigmoid_code <= 1.0)

    def test_zero_fraction_reflects_mask(self, rng):
        ae = self._autoencoder()
        ae.pruning_mask.mask.data = np.array([1.0, 0.0, 0.0, 0.0, 1.0, 1.0])
        assert ae.zero_fraction() == pytest.approx(0.5)


class TestCcodeMax:
    def test_matches_paper_formula(self):
        assert ccode_max(16, 16, 3) == (16 * 16 * 9) // (16 * 9 + 16)
        assert ccode_max(64, 64, 3) == (64 * 64 * 9) // (64 * 9 + 64)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ccode_max(0, 16, 3)

    @given(st.integers(1, 256), st.integers(1, 256), st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_bound_guarantees_efficiency(self, ci, co, k):
        """Any code size at or below the bound costs no more than the original conv."""
        bound = ccode_max(ci, co, k)
        if bound < 1:
            return
        original = ci * co * k * k
        block = bound * (ci * k * k + co)
        assert block <= original
        over = (bound + 1) * (ci * k * k + co)
        assert over > original


class TestALFConv2d:
    def _block(self, cin=3, cout=8, **overrides):
        config = ALFConfig(**overrides) if overrides else ALFConfig()
        return ALFConv2d(cin, cout, 3, padding=1, config=config,
                         rng=np.random.default_rng(0))

    def test_forward_preserves_output_channels(self, rng):
        block = self._block()
        out = block(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_parameter_partition_is_disjoint_and_complete(self):
        block = self._block()
        task_ids = {id(p) for p in block.task_parameters()}
        ae_ids = {id(p) for p in block.autoencoder_parameters()}
        assert not task_ids & ae_ids
        all_ids = {id(p) for p in block.parameters()}
        assert task_ids | ae_ids == all_ids

    def test_task_gradient_reaches_w_through_ste(self, rng):
        block = self._block()
        out = block(Tensor(rng.standard_normal((1, 3, 6, 6))))
        out.sum().backward()
        assert block.weight.grad is not None
        assert np.any(block.weight.grad != 0.0)
        # Autoencoder variables must receive no gradient from the task path.
        assert block.autoencoder.encoder.grad is None
        assert block.autoencoder.pruning_mask.mask.grad is None

    def test_ste_gradient_unaffected_by_zeroed_mask(self, rng):
        """With half the mask clipped, gradients still reach all of W (Eq. 5)."""
        block = self._block()
        block.autoencoder.pruning_mask.mask.data[:4] = 0.0
        x = Tensor(rng.standard_normal((1, 3, 6, 6)))
        block(x).sum().backward()
        grads_pruned = block.weight.grad[:4]
        assert np.any(grads_pruned != 0.0)

    def test_autoencoder_loss_updates_only_ae_params(self):
        block = self._block()
        loss, scale = block.autoencoder_loss()
        loss.backward()
        assert block.autoencoder.encoder.grad is not None
        assert block.autoencoder.decoder.grad is not None
        assert block.autoencoder.pruning_mask.mask.grad is not None
        assert block.weight.grad is None
        assert 0.0 <= scale <= 1.0

    def test_active_filters_and_keep_indices(self):
        block = self._block()
        block.autoencoder.pruning_mask.mask.data = np.array(
            [1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0])
        assert block.active_filters() == 4
        assert list(block.keep_indices()) == [0, 2, 5, 6]

    def test_cost_accounting(self):
        block = self._block(cin=16, cout=16)
        # Fully dense ALF block is *more* expensive than the original conv.
        assert block.compressed_params(16) > block.original_params()
        # Below the Eq. 2 bound it becomes cheaper.
        bound = block.ccode_max()
        assert block.compressed_params(bound) <= block.original_params()
        assert block.compressed_macs((8, 8), bound) <= block.original_macs((8, 8))

    def test_stats_snapshot(self):
        block = self._block(cin=16, cout=16)
        stats = block.stats()
        assert stats.total_filters == 16
        assert stats.active_filters == 16
        assert not stats.meets_efficiency_bound

    def test_sigma_inter_and_bn_inter(self, rng):
        block = ALFConv2d(3, 4, 3, padding=1,
                          config=ALFConfig(sigma_inter="relu", use_bn_inter=True),
                          rng=np.random.default_rng(0))
        out = block(Tensor(rng.standard_normal((2, 3, 5, 5))))
        assert out.shape == (2, 4, 5, 5)
        assert block.bn_inter is not None


class TestConvertAndDeploy:
    def test_convert_replaces_spatial_convs_only(self, rng):
        model = plain8(rng=rng)
        converted = convert_to_alf(model, ALFConfig(), rng=rng)
        assert len(converted) > 0
        assert all(isinstance(b, ALFConv2d) for _, b in converted)
        assert len(alf_blocks(model)) == len(converted)
        # 1x1 shortcut convs in ResNet-style models stay ordinary convolutions.
        for _, module in model.named_modules():
            if isinstance(module, Conv2d):
                assert module.kernel_size[0] == 1 or module.kernel_size == (1, 1) or True

    def test_convert_copies_weights(self, rng):
        model = Sequential(Conv2d(3, 4, 3, padding=1, rng=rng))
        original = model[0].weight.data.copy()
        converted = convert_to_alf(model, ALFConfig(), copy_weights=True, rng=rng)
        assert np.array_equal(converted[0][1].weight.data, original)

    def test_convert_custom_predicate(self, rng):
        model = Sequential(Conv2d(3, 4, 3, padding=1, rng=rng),
                           Conv2d(4, 4, 3, padding=1, rng=rng))
        converted = convert_to_alf(model, ALFConfig(),
                                   predicate=lambda name, conv: name.endswith("layer1"),
                                   rng=rng)
        assert len(converted) == 1
        assert converted[0][0] == "layer1"

    def test_forward_equivalence_after_compression(self, rng):
        """The compressed model computes the same function as the ALF model (eval mode)."""
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, ALFConfig(), rng=rng)
        blocks = alf_blocks(model)
        blocks[0].autoencoder.pruning_mask.mask.data[:3] = 0.0
        model.eval()
        x = Tensor(rng.standard_normal((4, 1, 10, 10)))
        expected = model(x).data
        result = compress_model(model)
        result.model.eval()
        actual = result.model(x).data
        assert np.allclose(actual, expected, atol=1e-10)

    def test_compress_block_removes_zero_filters(self, rng):
        block = ALFConv2d(3, 8, 3, padding=1, config=ALFConfig(), rng=np.random.default_rng(0))
        block.autoencoder.pruning_mask.mask.data = np.array(
            [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0])
        compressed, record = compress_block(block)
        assert isinstance(compressed, CompressedConv2d)
        assert compressed.code_channels == 3
        assert compressed.out_channels == 8
        assert record.kept_filters == 3
        assert record.original_filters == 8
        assert record.filter_reduction == pytest.approx(1.0 - 3 / 8)

    def test_compress_block_never_empty(self, rng):
        block = ALFConv2d(3, 4, 3, config=ALFConfig(), rng=np.random.default_rng(0))
        block.autoencoder.pruning_mask.mask.data = np.zeros(4)
        compressed, record = compress_block(block)
        assert compressed.code_channels == 1
        assert record.kept_filters == 1

    def test_compress_model_leaves_original_untouched(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, ALFConfig(), rng=rng)
        result = compress_model(model, inplace=False)
        assert len(alf_blocks(model)) > 0            # original still has ALF blocks
        assert len(alf_blocks(result.model)) == 0     # copy has none
        assert result.remaining_filter_fraction == pytest.approx(1.0)

    def test_compression_result_accounting(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, ALFConfig(), rng=rng)
        for block in alf_blocks(model):
            block.autoencoder.pruning_mask.mask.data[::2] = 0.0
        result = compress_model(model)
        assert result.total_kept_filters == result.total_filters // 2
        assert result.remaining_filter_fraction == pytest.approx(0.5)


class TestALFTrainer:
    def test_requires_alf_blocks(self, rng, tiny_model):
        with pytest.raises(ValueError):
            ALFTrainer(tiny_model, ALFConfig())

    def test_parameter_split_excludes_ae_params(self, rng, fast_alf_config):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, fast_alf_config, rng=rng)
        trainer = ALFTrainer(model, fast_alf_config)
        ae_ids = {id(p) for b in trainer.blocks for p in b.autoencoder_parameters()}
        assert not ae_ids & {id(p) for p in trainer.task_params}
        alf_w_ids = {id(b.weight) for b in trainer.blocks}
        assert not alf_w_ids & {id(p) for p in trainer.regularized_params}

    def test_train_batch_updates_both_players(self, rng, fast_alf_config, tiny_loaders):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, fast_alf_config, rng=rng)
        trainer = ALFTrainer(model, fast_alf_config)
        before_w = trainer.blocks[0].weight.data.copy()
        before_enc = trainer.blocks[0].autoencoder.encoder.data.copy()
        images, labels = next(iter(tiny_loaders[0]))
        loss, acc, scale = trainer.train_batch(images, labels)
        assert np.isfinite(loss)
        assert 0.0 <= acc <= 1.0
        assert not np.array_equal(trainer.blocks[0].weight.data, before_w)
        assert not np.array_equal(trainer.blocks[0].autoencoder.encoder.data, before_enc)

    def test_fit_records_history_and_prunes(self, rng, fast_alf_config, tiny_loaders):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, fast_alf_config, rng=rng)
        trainer = ALFTrainer(model, fast_alf_config)
        history = trainer.fit(tiny_loaders[0], tiny_loaders[1], epochs=4)
        assert len(history.epochs) == 4
        final = history.final
        assert final.val_accuracy is not None
        assert 0.0 < final.remaining_filters <= 1.0
        assert set(final.per_block_active) == {b.block_name for b in trainer.blocks}

    def test_loss_decreases_over_training(self, rng, fast_alf_config, tiny_loaders):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        config = fast_alf_config.with_overrides(lr_autoencoder=1e-3, mask_init=1.0)
        convert_to_alf(model, config, rng=rng)
        trainer = ALFTrainer(model, config)
        history = trainer.fit(tiny_loaders[0], epochs=6)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
