"""Unit tests for the autograd Tensor: arithmetic, reductions, shape ops."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concatenate, stack
from repro.nn.tensor import unbroadcast
from repro.nn.utils import check_gradient


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype.kind == "f"

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.dtype.kind == "f"

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_shares_data_but_drops_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_backward_requires_grad_error(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda t: (t + 3.0).sum(), rng.standard_normal((3, 4)))

    def test_mul(self, rng):
        other = rng.standard_normal((3, 4))
        check_gradient(lambda t: (t * Tensor(other)).sum(), rng.standard_normal((3, 4)))

    def test_sub_and_neg(self, rng):
        check_gradient(lambda t: (5.0 - t).sum(), rng.standard_normal((2, 3)))

    def test_div(self, rng):
        denom = rng.standard_normal((2, 3)) + 3.0
        check_gradient(lambda t: (t / Tensor(denom)).sum(), rng.standard_normal((2, 3)))

    def test_div_wrt_denominator(self, rng):
        numer = rng.standard_normal((2, 3))
        check_gradient(lambda t: (Tensor(numer) / t).sum(), rng.standard_normal((2, 3)) + 3.0)

    def test_pow(self, rng):
        check_gradient(lambda t: (t ** 3).sum(), rng.standard_normal((3,)) + 2.0)

    def test_matmul(self, rng):
        other = rng.standard_normal((4, 5))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), rng.standard_normal((3, 4)))

    def test_matmul_wrt_rhs(self, rng):
        lhs = rng.standard_normal((3, 4))
        check_gradient(lambda t: (Tensor(lhs) @ t).sum(), rng.standard_normal((4, 5)))

    def test_broadcast_add_gradient(self, rng):
        other = rng.standard_normal((1, 4))
        check_gradient(lambda t: (t + Tensor(other)).sum(), rng.standard_normal((3, 4)))
        wide = rng.standard_normal((3, 4))
        check_gradient(lambda t: (Tensor(wide) + t).sum(), rng.standard_normal((1, 4)))

    def test_gradient_accumulates_when_reused(self):
        t = Tensor([2.0], requires_grad=True)
        out = t * 3.0 + t * 4.0
        out.sum().backward()
        assert t.grad[0] == pytest.approx(7.0)


class TestElementwiseGradients:
    def test_exp(self, rng):
        check_gradient(lambda t: t.exp().sum(), rng.standard_normal((3, 3)))

    def test_log(self, rng):
        check_gradient(lambda t: t.log().sum(), rng.random((3, 3)) + 0.5)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.standard_normal((3, 3)))

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.standard_normal((3, 3)))

    def test_relu(self, rng):
        check_gradient(lambda t: t.relu().sum(), rng.standard_normal((3, 3)) + 0.1)

    def test_abs(self, rng):
        check_gradient(lambda t: t.abs().sum(), rng.standard_normal((3, 3)) + 0.5)

    def test_sqrt(self, rng):
        check_gradient(lambda t: t.sqrt().sum(), rng.random((3,)) + 0.5)

    def test_clip_passes_gradient_inside_interval(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum(self, rng):
        other = rng.standard_normal((4,))
        check_gradient(lambda t: t.maximum(Tensor(other)).sum(),
                       rng.standard_normal((4,)) + 1.0)


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        check_gradient(lambda t: t.sum(axis=1).sum(), rng.standard_normal((3, 4)))

    def test_sum_keepdims(self, rng):
        check_gradient(lambda t: t.sum(axis=0, keepdims=True).sum(), rng.standard_normal((3, 4)))

    def test_mean(self, rng):
        check_gradient(lambda t: t.mean().sum(), rng.standard_normal((3, 4)))

    def test_mean_axis_tuple(self, rng):
        check_gradient(lambda t: t.mean(axis=(0, 1)).sum(), rng.standard_normal((2, 3, 4)))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((4, 5))
        assert Tensor(data).var().item() == pytest.approx(np.var(data))

    def test_reshape(self, rng):
        check_gradient(lambda t: t.reshape(6, 2).sum(), rng.standard_normal((3, 4)))

    def test_flatten(self, rng):
        t = Tensor(rng.standard_normal((2, 3, 4)))
        assert t.flatten(start_dim=1).shape == (2, 12)

    def test_transpose(self, rng):
        check_gradient(lambda t: t.transpose(1, 0).sum() * 2.0, rng.standard_normal((3, 4)))

    def test_transpose_default_reverses(self, rng):
        t = Tensor(rng.standard_normal((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_getitem_gradient(self, rng):
        check_gradient(lambda t: t[1:3].sum(), rng.standard_normal((5, 2)))

    def test_fancy_index_gradient(self):
        t = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        rows = np.array([0, 1, 2])
        cols = np.array([1, 2, 3])
        t[rows, cols].sum().backward()
        expected = np.zeros((3, 4))
        expected[rows, cols] = 1.0
        assert np.allclose(t.grad, expected)

    def test_pad2d(self, rng):
        check_gradient(lambda t: t.pad2d(1).sum() * 1.5, rng.standard_normal((1, 2, 3, 3)))

    def test_concatenate(self, rng):
        a = rng.standard_normal((2, 3))
        check_gradient(lambda t: concatenate([t, Tensor(a)], axis=0).sum(),
                       rng.standard_normal((2, 3)))

    def test_stack(self, rng):
        a = rng.standard_normal((2, 3))
        check_gradient(lambda t: stack([t, Tensor(a)], axis=0).sum(),
                       rng.standard_normal((2, 3)))


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self, rng):
        g = rng.standard_normal((3, 4))
        assert np.array_equal(unbroadcast(g, (3, 4)), g)

    def test_sums_leading_dims(self, rng):
        g = rng.standard_normal((5, 3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_sums_size_one_dims(self, rng):
        g = rng.standard_normal((3, 4))
        out = unbroadcast(g, (1, 4))
        assert out.shape == (1, 4)
        assert np.allclose(out, g.sum(axis=0, keepdims=True))


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def small_arrays(draw, max_side=4):
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    values = draw(st.lists(st.floats(-5, 5, allow_nan=False),
                           min_size=rows * cols, max_size=rows * cols))
    return np.array(values).reshape(rows, cols)


@given(small_arrays(), small_arrays())
@settings(max_examples=30, deadline=None)
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.allclose(left, right)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_sum_linear_in_scaling(a):
    scaled = (Tensor(a) * 3.0).sum().item()
    assert scaled == pytest.approx(3.0 * Tensor(a).sum().item(), rel=1e-9, abs=1e-9)


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_backward_of_sum_is_ones(a):
    t = Tensor(a, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(a))


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_relu_idempotent(a):
    t = Tensor(a)
    once = t.relu().data
    twice = t.relu().relu().data
    assert np.allclose(once, twice)
