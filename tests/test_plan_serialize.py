"""The ``repro-plan/1`` wire form: save/load bit-identity, batch
re-binding, cache-served plans, and plan shipping over ``repro-job/1``.

The contracts pinned here:

* ``plan.save()`` / ``InferencePlan.load()`` round-trip every zoo model
  **bit-identically** in float32 and float64 — the loaded plan's output
  bytes equal the original plan's (and therefore eager's).
* Tampered payloads, stale weights digests and unknown schema versions
  are rejected with specific errors, never silently accepted.
* ``plan.bind(batch=k)`` serves k ∈ {1, 4, 8} from one compiled program
  without re-tracing the model, and bound batches auto-dispatch through
  the parent plan's ``__call__``.
* ``compile_report(cache=...)`` stores / serves serialized plans through
  the content-addressed store (damage → warning + recompile).
* A ``repro-job/1`` worker executing a shipped plan returns bytes equal
  to the sender's local forward.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

import repro.api as api
from repro.api.jobs import array_from_payload
from repro.deploy import InferencePlan, PLAN_SCHEMA, compile
from repro.models import available_models, bench_input_shape, build_model
from repro.nn import Tensor, no_grad
from repro.nn.backend import get_backend, use_backend

INPUT_SHAPE = (1, 16, 16)  # lenet's native geometry


def _eager(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _lenet_plan(batch=2, backend="numpy64", seed=0, **kwargs):
    model = build_model("lenet", rng=np.random.default_rng(seed))
    with use_backend(backend):
        plan = compile(model, INPUT_SHAPE, batch=batch, **kwargs)
    return model, plan


def _input(plan, batch=None, seed=1):
    rng = np.random.default_rng(seed)
    shape = ((batch or plan.batch),) + plan.input_shape
    return rng.standard_normal(shape).astype(plan.input_dtype)


# --------------------------------------------------------------------------- #
# Save / load bit-identity across the zoo
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["numpy32", "numpy64"])
@pytest.mark.parametrize("name", available_models())
def test_saved_plan_round_trips_bit_identical(name, backend, tmp_path):
    shape = bench_input_shape(name)
    model = build_model(name, rng=np.random.default_rng(7))
    with use_backend(backend):
        plan = compile(model, shape, batch=2)
    path = tmp_path / f"{name}.json"
    plan.save(path)
    loaded = InferencePlan.load(path)
    x = _input(plan)
    assert loaded.batch == plan.batch
    assert loaded.input_shape == plan.input_shape
    assert loaded.input_dtype == plan.input_dtype
    assert loaded(x).data.tobytes() == plan(x).data.tobytes(), (
        f"{name} on {backend}: loaded plan diverged from the original")
    assert loaded(x).data.tobytes() == _eager(
        model, get_backend(backend).asarray(x)).tobytes()


def test_payload_is_a_canonical_fixed_point(tmp_path):
    _, plan = _lenet_plan()
    payload = plan.to_dict()
    assert payload["schema"] == PLAN_SCHEMA
    loaded = InferencePlan.from_dict(json.loads(json.dumps(payload)))
    assert api.canonical_json(loaded.to_dict()) == api.canonical_json(payload)
    # On-disk form too: save → load → save is byte-equal.
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    plan.save(first)
    InferencePlan.load(first).save(second)
    assert first.read_bytes() == second.read_bytes()


# --------------------------------------------------------------------------- #
# Rejection: tampering, stale digests, unknown versions
# --------------------------------------------------------------------------- #
def _payload():
    return _lenet_plan()[1].to_dict()


def _restamp(payload):
    """Recompute the whole-payload digest after deliberate edits."""
    body = {k: v for k, v in payload.items() if k != "digest"}
    payload["digest"] = api.payload_digest(body)
    return payload


def test_tampered_payload_is_rejected():
    payload = _payload()
    payload["nodes"][0]["op"] = "relu"  # flip an op behind the digest
    with pytest.raises(ValueError, match="digest mismatch"):
        InferencePlan.from_dict(payload)


def test_stale_weights_digest_is_rejected():
    payload = _payload()
    payload["weights_digest"] = "0" * 64
    with pytest.raises(ValueError, match="weights digest"):
        InferencePlan.from_dict(_restamp(payload))


def test_unknown_schema_version_is_rejected():
    payload = _payload()
    payload["schema"] = "repro-plan/99"
    with pytest.raises(ValueError, match="unsupported plan schema"):
        InferencePlan.from_dict(_restamp(payload))
    with pytest.raises(TypeError):
        InferencePlan.from_dict("not a mapping")


def test_tampered_stored_layout_is_rejected():
    payload = _payload()
    payload["arena"]["capacities"][0] += 8
    with pytest.raises(ValueError, match="digest mismatch"):
        InferencePlan.from_dict(payload)
    with pytest.raises(ValueError, match="layout mismatch"):
        InferencePlan.from_dict(_restamp(payload))


# --------------------------------------------------------------------------- #
# Batch-polymorphic binding
# --------------------------------------------------------------------------- #
def test_bind_serves_multiple_batches_without_recompiling():
    model, plan = _lenet_plan(batch=1)
    xs = {k: _input(plan, batch=k, seed=k) for k in (1, 4, 8)}
    refs = {k: _eager(model, x) for k, x in xs.items()}
    # Invalidate the live model: if bind() re-traced instead of deriving
    # from the stored program, outputs would now be garbage.
    for _, param in model.named_parameters():
        param.data = param.data * 0.0
    for k in (1, 4, 8):
        bound = plan.bind(batch=k)
        assert bound.batch == k
        assert bound(xs[k]).data.tobytes() == refs[k].tobytes()
    assert plan.bind(batch=1) is plan
    assert plan.bind(batch=4) is plan.bind(batch=4)  # cached, not re-lowered
    assert set(plan.stats.batch_peaks) >= {1, 4, 8}
    assert all(peak > 0 for peak in plan.stats.batch_peaks.values())


def test_bound_batches_dispatch_through_the_parent_plan():
    _, plan = _lenet_plan(batch=2)
    bound = plan.bind(batch=4)
    x = _input(plan, batch=4, seed=9)
    assert plan(x).data.tobytes() == bound(x).data.tobytes()
    # Unbound batch sizes are still a hard error, not a silent re-bind.
    with pytest.raises(ValueError, match="input shape"):
        plan(np.zeros((3,) + INPUT_SHAPE, dtype=plan.input_dtype))


def test_loaded_plan_binds_too():
    model, plan = _lenet_plan(batch=2)
    loaded = InferencePlan.from_dict(plan.to_dict())
    x = _input(plan, batch=4, seed=3)
    ref = _eager(model, x)
    assert loaded.bind(batch=4)(x).data.tobytes() == ref.tobytes()


def test_bind_rejects_bad_batches():
    _, plan = _lenet_plan(batch=2)
    with pytest.raises(ValueError, match=">= 1"):
        plan.bind(batch=0)


# --------------------------------------------------------------------------- #
# Cache-served plans (compile_report / report.plan / session.plan)
# --------------------------------------------------------------------------- #
@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return api.MemoryReportCache()
    return api.FileReportCache(tmp_path / "cache")


@pytest.fixture(scope="module")
def report():
    return api.compress("lenet", method="magnitude",
                        input_shape=INPUT_SHAPE, hardware=None)


def test_compile_report_stores_and_serves_plans(store, report):
    plan = api.compile_report(report, cache=store)
    assert store.stats().plans == 1
    served = report.plan(cache=store)  # the report method takes the knob too
    assert store.stats().hits >= 1
    x = _input(plan)
    assert served(x).data.tobytes() == plan(x).data.tobytes()


def test_plan_cache_respects_policy(report):
    cache = api.MemoryReportCache()
    api.compile_report(report, cache=(cache, "read"))
    assert cache.stats().plans == 0       # read-only never writes
    api.compile_report(report, cache=(cache, "write"))
    assert cache.stats().plans == 1
    assert cache.stats().hits == 0        # write-only never reads


def test_plan_address_tracks_model_and_options(report):
    resolved = get_backend("numpy64")
    base = dict(input_shape=INPUT_SHAPE, batch=2, backend=resolved,
                memory_budget=None, fold_bn=False, elide_dead=True)
    first = api.plan_address(report, **base)
    assert first == api.plan_address(report, **base)  # deterministic
    assert first != api.plan_address(report, **{**base, "batch": 4})
    assert first != api.plan_address(report, **{**base, "fold_bn": True})


def test_corrupt_stored_plan_recompiles_with_warning(tmp_path, report):
    cache = api.FileReportCache(tmp_path / "cache")
    plan = api.compile_report(report, cache=cache)
    address = cache._plan_keys()[0]
    path = cache._plan_path(address)
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    with open(path, "w", encoding="utf-8") as f:
        f.write(text[:len(text) // 2])
    with pytest.warns(api.CacheIntegrityWarning):
        again = api.compile_report(report, cache=(cache, "read"))
    x = _input(plan)
    assert again(x).data.tobytes() == plan(x).data.tobytes()


def test_session_plan_routes_through_the_session_cache():
    cache = api.MemoryReportCache()
    spec = api.CompressionSpec(method="magnitude", input_shape=INPUT_SHAPE)
    with api.SweepSession(model="lenet", hardware=None,
                         input_shape=INPUT_SHAPE, cache=cache) as session:
        result = session.submit(spec).result()
        first = session.plan(result)
        assert cache.stats().plans == 1
        second = session.plan(result)
    x = _input(first)
    assert second(x).data.tobytes() == first(x).data.tobytes()


# --------------------------------------------------------------------------- #
# Plan shipping over repro-job/1
# --------------------------------------------------------------------------- #
def test_worker_main_executes_plan_jobs():
    _, plan = _lenet_plan()
    x = _input(plan)
    payload = api.plan_job_payload(plan, x, job_id=7)
    assert payload["schema"] == api.JOB_SCHEMA
    stdin = io.StringIO(json.dumps(payload) + "\n")
    stdout = io.StringIO()
    assert api.worker_main(stdin, stdout) == 0
    result = json.loads(stdout.getvalue().strip())
    assert result["schema"] == api.JOB_RESULT_SCHEMA
    assert result["ok"] is True and result["job_id"] == 7
    output = array_from_payload(result["output"])
    assert output.tobytes() == plan(x).data.tobytes()


def test_worker_reports_plan_failures_as_protocol_data():
    _, plan = _lenet_plan()
    payload = api.plan_job_payload(plan, _input(plan), job_id=3)
    payload["plan"] = {**payload["plan"], "schema": "repro-plan/99"}
    stdin = io.StringIO(json.dumps(payload) + "\n")
    stdout = io.StringIO()
    api.worker_main(stdin, stdout)
    result = json.loads(stdout.getvalue().strip())
    assert result["ok"] is False and result["job_id"] == 3
    assert result["error"]["type"] == "ValueError"


def test_remote_worker_runs_shipped_plan_bit_identically():
    """The acceptance smoke test: a subprocess that never saw the model
    reproduces the local eager forward from the wire form alone."""
    model, plan = _lenet_plan()
    x = _input(plan)
    remote = api.run_plan_remote(plan, x)
    assert remote.tobytes() == plan(x).data.tobytes()
    assert remote.tobytes() == _eager(model, x).tobytes()
